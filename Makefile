GO ?= go

.PHONY: check build vet test race fuzz-smoke fmt-check advise-demo bench obs-demo serve-demo statusz-demo bench-server bench-maintain update-demo bench-join gate-join views-demo bench-views

# check is the full local gate: static checks, build, the race-enabled
# test suite, and a short fuzz smoke of the XPath parser.
check: vet build race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=10s ./internal/xpath

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench runs the serving hot-path benchmarks (plan cache hit/miss and
# sequential-vs-parallel rewrite) with allocation stats, then refreshes
# the machine-readable speedup report in BENCH_serving.json.
bench:
	$(GO) test -run='^$$' -bench='AnswerPlanCache|AnswerParallel' -benchmem -count=1 .
	XPV_BENCH_REPORT=1 $(GO) test -run=TestServingBenchReport -count=1 -v .
	$(MAKE) bench-maintain

# bench-join runs the holistic-join kernel microbenchmarks (virtual-tree
# build, sequential join, prefix-partitioned parallel join) with a
# multi-core GOMAXPROCS so the parallel kernel actually fans out even
# when invoked from a constrained shell. Profile the join path with
# `go run ./cmd/xpvbench -join -cpuprofile join.pprof`.
bench-join:
	GOMAXPROCS=4 $(GO) test -run='^$$' -bench=BenchmarkJoinKernel -benchmem -count=1 ./internal/rewrite

# gate-join replays the serving report's join measurement and fails if
# join_ns at 8 views regressed more than 20% over the committed
# BENCH_serving.json baseline. CI runs this on every push.
gate-join:
	XPV_JOIN_GATE=1 $(GO) test -run=TestJoinRegressionGate -count=1 -v .

# bench-maintain runs the view-maintenance benchmark (incremental
# maintenance vs full rematerialization across inserted-subtree sizes,
# plus the scoped-vs-global invalidation update storm) and refreshes the
# machine-readable report in BENCH_maintain.json. Interactive variant:
# `go run ./cmd/xpvbench -maintain`.
bench-maintain:
	XPV_BENCH_MAINTAIN=1 $(GO) test -run=TestMaintainBenchReport -count=1 -v .

# obs-demo exercises the observability surface end to end: an -explain
# run of the paper's running example (Figure 2 document, Table I views,
# query Q_e) with the slow-query log and metrics dump armed, then the
# telemetry-overhead benchmark, which refreshes BENCH_obs.json.
obs-demo:
	printf '%s' '<b><t/><a/><a/><s><t/><p/><p/><f><i/></f><s><t/><p/><p/><f><i/></f></s></s><s><t/><p/><p/><s><t/><p/><f><i/></f></s><s><t/><p/></s></s></b>' > /tmp/xpv-book.xml
	$(GO) run ./cmd/xpvquery -doc /tmp/xpv-book.xml \
		-view '//s[t]/p' -view '//s[a][.//i]//p' -view '//s[*//t]//p' -view '//s[p]/f' \
		-strategy HV -explain -slowlog 1ns -metrics '//s[f//i][t]/p'
	$(GO) run ./cmd/xpvbench -obs -quick

# serve-demo boots xpvserved on the paper's running example (Figure 2
# document, Table I views), round-trips a query, the explain endpoint,
# liveness and the metrics exposition, then drains it with SIGTERM and
# requires a clean exit.
serve-demo:
	printf '%s' '<b><t/><a/><a/><s><t/><p/><p/><f><i/></f><s><t/><p/><p/><f><i/></f></s></s><s><t/><p/><p/><s><t/><p/><f><i/></f></s><s><t/><p/></s></s></b>' > /tmp/xpv-book.xml
	$(GO) build -o /tmp/xpvserved ./cmd/xpvserved
	set -e; \
	/tmp/xpvserved -addr 127.0.0.1:8931 -doc /tmp/xpv-book.xml \
	  -view '//s[t]/p' -view '//s[a][.//i]//p' -view '//s[*//t]//p' -view '//s[p]/f' \
	  -slowlog 1ms & pid=$$!; \
	for i in $$(seq 1 100); do curl -fsS http://127.0.0.1:8931/readyz >/dev/null 2>&1 && break; sleep 0.1; done; \
	curl -fsS -X POST -d '{"query": "//s[f//i][t]/p", "include_xml": true}' http://127.0.0.1:8931/v1/query; \
	curl -fsS -G --data-urlencode 'query=//s[f//i][t]/p' --data-urlencode 'strategy=HV' http://127.0.0.1:8931/v1/explain >/dev/null; \
	curl -fsS http://127.0.0.1:8931/healthz; \
	curl -fsS http://127.0.0.1:8931/metrics | grep xpvd_requests_total; \
	kill -TERM $$pid; \
	wait $$pid; \
	echo "serve-demo: drained cleanly"

# statusz-demo exercises the tenant observability surface end to end:
# boots xpvserved with trace export and pprof armed, sends a query with
# a W3C traceparent header and checks the trace ID round-trips into the
# response, reads /statusz (text and JSON) including the SLO burn-rate
# block, pokes the pprof side listener, then drains with SIGTERM and
# requires the propagated trace to have landed in the JSONL export.
statusz-demo:
	printf '%s' '<b><t/><a/><a/><s><t/><p/><p/><f><i/></f><s><t/><p/><p/><f><i/></f></s></s><s><t/><p/><p/><s><t/><p/><f><i/></f></s><s><t/><p/></s></s></b>' > /tmp/xpv-book.xml
	$(GO) build -o /tmp/xpvserved ./cmd/xpvserved
	rm -f /tmp/xpv-traces.jsonl
	set -e; \
	/tmp/xpvserved -addr 127.0.0.1:8932 -doc /tmp/xpv-book.xml \
	  -view '//s[t]/p' -view '//s[a][.//i]//p' -view '//s[*//t]//p' -view '//s[p]/f' \
	  -trace-export /tmp/xpv-traces.jsonl -pprof 127.0.0.1:8933 -slowlog 1ns & pid=$$!; \
	for i in $$(seq 1 100); do curl -fsS http://127.0.0.1:8932/readyz >/dev/null 2>&1 && break; sleep 0.1; done; \
	curl -fsS -X POST -H 'traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01' \
	  -d '{"query": "//s[f//i][t]/p"}' http://127.0.0.1:8932/v1/query \
	  | grep 4bf92f3577b34da6a3ce929d0e0e4736 >/dev/null; \
	curl -fsS http://127.0.0.1:8932/statusz; \
	curl -fsS http://127.0.0.1:8932/statusz | grep -q 'availability_burn'; \
	curl -fsS 'http://127.0.0.1:8932/statusz?format=json' | grep -q '"tenants"'; \
	curl -fsS 'http://127.0.0.1:8932/statusz?runtime=1' | grep -q 'runtime /sched/goroutines'; \
	curl -fsS http://127.0.0.1:8933/debug/pprof/cmdline >/dev/null; \
	kill -TERM $$pid; \
	wait $$pid; \
	grep -q 4bf92f3577b34da6a3ce929d0e0e4736 /tmp/xpv-traces.jsonl; \
	echo "statusz-demo: trace exported, statusz healthy"

# update-demo exercises the mutation surface end to end: boots xpvserved
# on the paper's running example, inserts a titled section via POST
# /v1/update, checks the query surface sees the new paragraph, deletes
# the section, checks the answer disappears, then drains with SIGTERM
# and requires a clean exit.
update-demo:
	printf '%s' '<b><t/><a/><a/><s><t/><p/><p/><f><i/></f><s><t/><p/><p/><f><i/></f></s></s><s><t/><p/><p/><s><t/><p/><f><i/></f></s><s><t/><p/></s></s></b>' > /tmp/xpv-book.xml
	$(GO) build -o /tmp/xpvserved ./cmd/xpvserved
	set -e; \
	/tmp/xpvserved -addr 127.0.0.1:8934 -doc /tmp/xpv-book.xml \
	  -view '//s[t]/p' -view '//s[a][.//i]//p' -view '//s[*//t]//p' -view '//s[p]/f' \
	  -slowlog 1ms & pid=$$!; \
	for i in $$(seq 1 100); do curl -fsS http://127.0.0.1:8934/readyz >/dev/null 2>&1 && break; sleep 0.1; done; \
	code=$$(curl -fsS -X POST -d '{"op":"insert","parent_code":"0","xml":"<s><t/><p/></s>"}' \
	  http://127.0.0.1:8934/v1/update | sed -n 's/.*"code": *"\([^"]*\)".*/\1/p'); \
	test -n "$$code"; echo "update-demo: inserted section at $$code"; \
	curl -fsS -X POST -d '{"query": "//s[t]/p"}' http://127.0.0.1:8934/v1/query | grep -q "\"$$code\."; \
	curl -fsS -X POST -d "{\"op\":\"delete\",\"code\":\"$$code\"}" http://127.0.0.1:8934/v1/update >/dev/null; \
	curl -fsS -X POST -d '{"query": "//s[t]/p"}' http://127.0.0.1:8934/v1/query | { ! grep -q "\"$$code\."; }; \
	curl -fsS http://127.0.0.1:8934/metrics | grep xpvd_updates_total; \
	kill -TERM $$pid; \
	wait $$pid; \
	echo "update-demo: insert/delete round-trip visible to queries, drained cleanly"

# bench-server runs the daemon load-test harness (sustained, overload
# with degraded-rung serving, SIGTERM drain) and refreshes the
# machine-readable report in BENCH_server.json.
bench-server:
	XPV_BENCH_SERVER=1 $(GO) test -run=TestServerBenchReport -count=1 -v ./internal/server

# views-demo exercises the view observatory end to end: boots xpvserved
# on the paper's running example, serves a few queries, reads the
# per-view attribution from GET /v1/views and the drift/calibration
# block from /statusz, checks the join-kernel and calibration metrics in
# /metrics, then runs the library-level report through xpvquery
# -viewstats. CI runs this on every push.
views-demo:
	printf '%s' '<b><t/><a/><a/><s><t/><p/><p/><f><i/></f><s><t/><p/><p/><f><i/></f></s></s><s><t/><p/><p/><s><t/><p/><f><i/></f></s><s><t/><p/></s></s></b>' > /tmp/xpv-book.xml
	$(GO) build -o /tmp/xpvserved ./cmd/xpvserved
	set -e; \
	/tmp/xpvserved -addr 127.0.0.1:8935 -doc /tmp/xpv-book.xml \
	  -view '//s[t]/p' -view '//s[a][.//i]//p' -view '//s[*//t]//p' -view '//s[p]/f' \
	  -slowlog 1ns & pid=$$!; \
	for i in $$(seq 1 100); do curl -fsS http://127.0.0.1:8935/readyz >/dev/null 2>&1 && break; sleep 0.1; done; \
	for i in 1 2 3; do curl -fsS -X POST -d '{"query": "//s[f//i][t]/p"}' http://127.0.0.1:8935/v1/query >/dev/null; done; \
	curl -fsS http://127.0.0.1:8935/v1/views; \
	curl -fsS http://127.0.0.1:8935/v1/views | grep -q '"hits": 3'; \
	curl -fsS http://127.0.0.1:8935/statusz | grep -q 'calibration_err'; \
	curl -fsS http://127.0.0.1:8935/statusz | grep -q 'drift: armed='; \
	curl -fsS http://127.0.0.1:8935/metrics | grep -q 'xpv_joins_total'; \
	curl -fsS http://127.0.0.1:8935/metrics | grep -q 'xpv_cost_calibration_err_ppm_count'; \
	kill -TERM $$pid; \
	wait $$pid; \
	$(GO) run ./cmd/xpvquery -doc /tmp/xpv-book.xml \
		-view '//s[t]/p' -view '//s[a][.//i]//p' -view '//s[*//t]//p' -view '//s[p]/f' \
		-strategy HV -viewstats '//s[f//i][t]/p' | grep -q '"benefit_per_kb"'; \
	echo "views-demo: per-view attribution visible over HTTP and CLI"

# bench-views replays the paper's running example through the view
# observatory (per-view attribution + cost-model calibration) and the
# XMark drift demo (steady replay stays quiet, a shifted workload trips
# the threshold), refreshing the machine-readable BENCH_views.json.
bench-views:
	XPV_BENCH_VIEWS=1 $(GO) test -run=TestViewStatsBenchReport -count=1 -v .

# advise-demo generates a positive workload and runs the advisor against
# the naive top-k baseline at the same byte budget.
advise-demo:
	$(GO) run ./cmd/xpvgen -queries 300 -positive -scale 0.1 -seed 2008 > /tmp/xpv-workload.txt
	$(GO) run ./cmd/xpvadvise -workload /tmp/xpv-workload.txt -scale 0.1 -seed 2008 -budget 196608 -compare -apply
