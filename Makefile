GO ?= go

.PHONY: check build vet test race fuzz-smoke

# check is the full local gate: static checks, build, the race-enabled
# test suite, and a short fuzz smoke of the XPath parser.
check: vet build race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=10s ./internal/xpath
