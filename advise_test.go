package xpathviews_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"testing"

	"xpathviews"
	"xpathviews/internal/advisor"
	"xpathviews/internal/pattern"
	"xpathviews/internal/workload"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xpath"
)

// canon is the recorder's tally key: the minimized pattern string.
func canon(src string) string {
	return pattern.Minimize(xpath.MustParse(src)).String()
}

// TestRecorderHookClassification drives each serving path and checks
// the recorder's outcome buckets.
func TestRecorderHookClassification(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 42})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddView("//person/name", 0); err != nil {
		t.Fatal(err)
	}
	rec, err := xpathviews.NewRecorder(nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.SetSampling(1)
	sys.SetRecorder(rec)
	ctx := context.Background()

	answerable := xpath.MustParse("//person/name")
	unanswerable := xpath.MustParse("//item/location")

	// View strategy, served from the view: Answered.
	if _, err := sys.AnswerPatternContext(ctx, answerable, xpathviews.Options{Strategy: xpathviews.HV}); err != nil {
		t.Fatal(err)
	}
	// Direct evaluation succeeds but no view was used: FellBack.
	if _, err := sys.AnswerPatternContext(ctx, answerable, xpathviews.Options{Strategy: xpathviews.BN}); err != nil {
		t.Fatal(err)
	}
	// No view certifies the query: Failed.
	if _, err := sys.AnswerPatternContext(ctx, unanswerable, xpathviews.Options{Strategy: xpathviews.HV}); !errors.Is(err, xpathviews.ErrNotAnswerable) {
		t.Fatalf("want ErrNotAnswerable, got %v", err)
	}
	// Starved step budget: BudgetExhausted.
	if _, err := sys.AnswerPatternContext(ctx, unanswerable, xpathviews.Options{Strategy: xpathviews.BN, MaxSteps: 1}); !errors.Is(err, xpathviews.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	// Resilient chain answering on a view rung: Answered.
	if _, err := sys.AnswerPatternResilient(ctx, answerable, xpathviews.Options{}); err != nil {
		t.Fatal(err)
	}
	// Resilient chain degrading to direct evaluation: FellBack.
	if _, err := sys.AnswerPatternResilient(ctx, unanswerable, xpathviews.Options{}); err != nil {
		t.Fatal(err)
	}

	byQuery := make(map[string]advisor.QueryStat)
	for _, st := range rec.Snapshot() {
		byQuery[st.Query] = st
	}
	a := byQuery[canon("//person/name")]
	if a.Counts[advisor.Answered] != 2 || a.Counts[advisor.FellBack] != 1 {
		t.Fatalf("answerable query tallies = %v", a.Counts)
	}
	u := byQuery[canon("//item/location")]
	if u.Counts[advisor.Failed] != 1 || u.Counts[advisor.BudgetExhausted] != 1 || u.Counts[advisor.FellBack] != 1 {
		t.Fatalf("unanswerable query tallies = %v", u.Counts)
	}

	// Detaching the recorder stops tallying.
	sys.SetRecorder(nil)
	if _, err := sys.AnswerPatternContext(ctx, answerable, xpathviews.Options{Strategy: xpathviews.HV}); err != nil {
		t.Fatal(err)
	}
	if got := rec.Snapshot(); got[0].Freq()+got[1].Freq() != 6 {
		t.Fatalf("detached recorder kept tallying: %v", got)
	}
}

// TestAdviseApplyRoundTrip: advice applied to the live system makes the
// workload answerable from views.
func TestAdviseApplyRoundTrip(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 42})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	stats := advisor.StatsFromEntries([]workload.Entry{
		{Freq: 5, Query: "//person/name"},
		{Freq: 3, Query: "//open_auction[bidder]/seller"},
	})
	adv, err := sys.Advise(stats, xpathviews.AdviceOptions{ByteBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Predicted.WeightedFraction != 1 {
		t.Fatalf("tiny workload not fully covered: %+v", adv.Predicted)
	}
	ids, err := sys.ApplyAdvice(adv)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(adv.Views) {
		t.Fatalf("applied %d of %d views", len(ids), len(adv.Views))
	}
	for _, e := range []string{"//person/name", "//open_auction[bidder]/seller"} {
		q := xpath.MustParse(e)
		if _, err := sys.AnswerPattern(q, xpathviews.HV); err != nil {
			if _, err2 := sys.AnswerPattern(q, xpathviews.MV); err2 != nil {
				t.Fatalf("applied advice does not answer %s: HV %v, MV %v", e, err, err2)
			}
		}
	}
}

// acceptanceWorkload builds a deterministic Zipf-weighted workload over
// positive XMark queries and splits it into a training slice and a
// held-out slice whose tail the training never saw.
func acceptanceWorkload(t testing.TB, positives []*pattern.Pattern) (train, holdout []advisor.QueryStat) {
	t.Helper()
	seen := make(map[string]bool)
	var distinct []string
	for _, q := range positives {
		s := pattern.Minimize(q).String()
		if !seen[s] {
			seen[s] = true
			distinct = append(distinct, s)
		}
	}
	if len(distinct) < 60 {
		t.Fatalf("only %d distinct positive queries", len(distinct))
	}
	nTrain := len(distinct) * 2 / 3
	zipf := func(qs []string) []advisor.QueryStat {
		entries := make([]workload.Entry, len(qs))
		for i, q := range qs {
			f := 240 / (i + 1)
			if f < 1 {
				f = 1
			}
			entries[i] = workload.Entry{Freq: f, Query: q}
		}
		return advisor.StatsFromEntries(entries)
	}
	// Held-out slice: the middle third overlaps training, the last third
	// is unseen; ranked in reverse so its hot queries differ from
	// training's.
	hold := append([]string(nil), distinct[len(distinct)/3:]...)
	for i, j := 0, len(hold)-1; i < j; i, j = i+1, j-1 {
		hold[i], hold[j] = hold[j], hold[i]
	}
	return zipf(distinct[:nTrain]), zipf(hold)
}

// replayFraction replays the workload against the system and returns
// the frequency-weighted fraction answered from views (HV, then MV).
func replayFraction(t testing.TB, sys *xpathviews.System, stats []advisor.QueryStat) float64 {
	t.Helper()
	answered, total := 0, 0
	for _, st := range stats {
		q, err := xpath.Parse(st.Query)
		if err != nil {
			t.Fatal(err)
		}
		f := st.Freq()
		total += f
		if _, err := sys.AnswerPattern(q, xpathviews.HV); err == nil {
			answered += f
		} else if errors.Is(err, xpathviews.ErrNotAnswerable) {
			if _, err := sys.AnswerPattern(q, xpathviews.MV); err == nil {
				answered += f
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(answered) / float64(total)
}

// TestAdvisedBeatsNaiveTopK is the acceptance criterion: on a generated
// XMark workload with a budget fitting at most half the naive
// per-query views, the advised set must answer (HV or MV) a strictly
// higher frequency-weighted fraction of a held-out slice than the
// naive top-k baseline at the same budget. The measured numbers are
// echoed to BENCH_advisor.json.
func TestAdvisedBeatsNaiveTopK(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance benchmark; skipped in -short")
	}
	const scale, seed = 0.12, 2008
	doc := xmark.Generate(xmark.Config{Scale: scale, Seed: seed})
	g := workload.New(seed, xmark.Schema(), xmark.Attributes(),
		workload.Params{MaxDepth: 4, ProbWild: 0.2, ProbDesc: 0.2, NumPred: 1, NumNestedPath: 1})
	positives := g.Positive(doc, 150, 30000)
	train, holdout := acceptanceWorkload(t, positives)

	sysAdvised, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}

	// The budget: shrink from the all-verbatim total until the naive
	// baseline fits at most half of the per-query views — the
	// constrained setting the advisor is for.
	_, naiveFullBytes := advisor.NaiveTopK(doc, sysAdvised.Encoding(), nil, train, 1<<31)
	budget := naiveFullBytes / 3
	naiveViews, naiveBytes := advisor.NaiveTopK(doc, sysAdvised.Encoding(), nil, train, budget)
	for 2*len(naiveViews) > len(train) && budget > 1024 {
		budget = budget * 2 / 3
		naiveViews, naiveBytes = advisor.NaiveTopK(doc, sysAdvised.Encoding(), nil, train, budget)
	}
	if 2*len(naiveViews) > len(train) {
		t.Fatalf("budget %d still fits %d of %d naive views — not a constrained setting",
			budget, len(naiveViews), len(train))
	}

	adv, err := sysAdvised.Advise(train, xpathviews.AdviceOptions{ByteBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if adv.TotalBytes > budget {
		t.Fatalf("advised %d bytes over budget %d", adv.TotalBytes, budget)
	}
	if _, err := sysAdvised.ApplyAdvice(adv); err != nil {
		t.Fatal(err)
	}

	sysNaive, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range naiveViews {
		if _, err := sysNaive.AddViewPattern(v.Pattern, 0); err != nil {
			t.Fatal(err)
		}
	}

	advisedFrac := replayFraction(t, sysAdvised, holdout)
	naiveFrac := replayFraction(t, sysNaive, holdout)
	if advisedFrac <= naiveFrac {
		t.Fatalf("advised set (%.3f) does not beat naive top-k (%.3f) on the held-out slice",
			advisedFrac, naiveFrac)
	}

	report := map[string]any{
		"source":           "TestAdvisedBeatsNaiveTopK",
		"scale":            scale,
		"seed":             seed,
		"train_queries":    len(train),
		"holdout_queries":  len(holdout),
		"naive_full_bytes": naiveFullBytes,
		"byte_budget":      budget,
		"advised": map[string]any{
			"views":              len(adv.Views),
			"bytes":              adv.TotalBytes,
			"predicted_fraction": adv.Predicted.WeightedFraction,
			"holdout_fraction":   advisedFrac,
		},
		"naive_topk": map[string]any{
			"views":            len(naiveViews),
			"bytes":            naiveBytes,
			"holdout_fraction": naiveFrac,
		},
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_advisor.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("advised %.1f%% vs naive %.1f%% at %d bytes (%d vs %d views)",
		100*advisedFrac, 100*naiveFrac, budget, len(adv.Views), len(naiveViews))
}
