package xpathviews

// This file is the serving layer's observability wiring over
// internal/telemetry: the per-System metrics bundle (metric names are
// resolved once per registry, never on the hot path), the per-call
// observation state threaded through the pipeline (callObs), the
// slow-query log, and the text exposition (DumpMetrics). The span tree
// itself is emitted at the stage boundaries in serving.go/plan.go.
//
// Cost model: with metrics enabled (the default), one Answer adds a
// handful of atomic adds and time.Now calls and zero allocations; with
// metrics disabled (SetMetricsRegistry(nil)) the bundle pointer is nil
// and every hook is a nil check. Tracing allocates, but only runs when
// the caller supplies Options.Trace or calls Explain.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"xpathviews/internal/budget"
	"xpathviews/internal/faults"
	"xpathviews/internal/pattern"
	"xpathviews/internal/rewrite"
	"xpathviews/internal/telemetry"
)

// MetricsRegistry aliases the telemetry registry so embedders can build
// their own (NewMetricsRegistry), inspect the process default
// (DefaultMetricsRegistry), and dump either via WriteText/WriteJSON.
type MetricsRegistry = telemetry.Registry

// Trace aliases the telemetry trace: a per-call span tree. Hand one to
// Options.Trace to record where a single query's time went.
type Trace = telemetry.Trace

// Span aliases one node of a Trace's span tree.
type Span = telemetry.Span

// SlowQuery aliases one slow-query log entry (see SlowQueries).
type SlowQuery = telemetry.SlowQuery

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// DefaultMetricsRegistry returns the process-wide default registry that
// every System records into unless overridden by SetMetricsRegistry or
// Options.Metrics.
func DefaultMetricsRegistry() *MetricsRegistry { return telemetry.Default() }

// NewTrace builds a trace whose root span is the serving call.
func NewTrace() *Trace { return telemetry.NewTrace("answer") }

// TraceContext aliases one parsed W3C traceparent header.
type TraceContext = telemetry.TraceContext

// ParseTraceparent parses a W3C traceparent header value (see
// internal/telemetry for the accepted layout).
func ParseTraceparent(s string) (TraceContext, bool) { return telemetry.ParseTraceparent(s) }

// FormatTraceparent renders a version-00 traceparent header with the
// sampled flag set.
func FormatTraceparent(traceID, spanID string) string {
	return telemetry.FormatTraceparent(traceID, spanID)
}

// NewTraceID generates a 16-byte (32 hex) W3C trace ID.
func NewTraceID() string { return telemetry.NewTraceID() }

// NewSpanID generates an 8-byte (16 hex) W3C span/parent ID.
func NewSpanID() string { return telemetry.NewSpanID() }

// servingMetrics is one registry's pre-resolved serving instruments.
// Holding the pointers keeps the hot path free of name lookups.
type servingMetrics struct {
	reg    *telemetry.Registry
	tenant string // label every name in this bundle carries ("" = none)

	answers     *telemetry.Counter // xpv_answers_total
	answerErrs  *telemetry.Counter // xpv_answer_errors_total
	errNotAns   *telemetry.Counter // xpv_errors_not_answerable_total
	errBudget   *telemetry.Counter // xpv_errors_budget_total
	errInternal *telemetry.Counter // xpv_errors_internal_total
	errCanceled *telemetry.Counter // xpv_errors_canceled_total

	planHits     *telemetry.Counter // xpv_plan_cache_hits_total
	planMisses   *telemetry.Counter // xpv_plan_cache_misses_total
	planBypass   *telemetry.Counter // xpv_plan_cache_bypass_total
	planNegative *telemetry.Counter // xpv_plan_negative_served_total

	rungServed    [len(rungNames)]*telemetry.Counter // xpv_resilient_rung_served_total{rung=...}
	rungFallbacks *telemetry.Counter                 // xpv_resilient_fallbacks_total

	slowQueries *telemetry.Counter // xpv_slow_queries_total

	maintains        *telemetry.Counter // xpv_maintain_total
	maintainErrs     *telemetry.Counter // xpv_maintain_errors_total
	maintainDirty    *telemetry.Counter // xpv_maintain_dirty_views_total
	maintainFragsAdd *telemetry.Counter // xpv_maintain_fragments_added_total
	maintainFragsDel *telemetry.Counter // xpv_maintain_fragments_removed_total

	latTotal   *telemetry.Histogram // xpv_answer_ns
	latParse   *telemetry.Histogram // xpv_parse_ns
	latFilter  *telemetry.Histogram // xpv_filter_ns
	latSelect  *telemetry.Histogram // xpv_select_ns
	latRewrite *telemetry.Histogram // xpv_rewrite_ns
	// latMaintain records mutation call latency (see mutate.go).
	latMaintain *telemetry.Histogram // xpv_maintain_ns

	// View-observatory instruments (see viewstats_report.go). driftGauge
	// carries the latest workload-drift distance in ppm; driftEvents
	// counts upward threshold crossings; calErr records each call's
	// calibration relative error in ppm.
	driftGauge  *telemetry.Gauge     // xpv_workload_drift
	driftEvents *telemetry.Counter   // xpv_workload_drift_events_total
	calErr      *telemetry.Histogram // xpv_cost_calibration_err_ppm

	// Join-kernel internals (satellite of the PR 9 kernel): partition
	// fan-out and gallop-hit volume per joined call, as totals plus
	// unitless distributions.
	joinsTotal      *telemetry.Counter   // xpv_joins_total
	joinPartsTotal  *telemetry.Counter   // xpv_join_partitions_total
	joinGallopTotal *telemetry.Counter   // xpv_join_gallop_hits_total
	joinPartsHist   *telemetry.Histogram // xpv_join_partition_fanout
	joinGallopHist  *telemetry.Histogram // xpv_join_gallop_hits
}

// bundles caches one servingMetrics per (registry, tenant label) so
// per-call Options.Metrics overrides and per-tenant labeling do not
// re-resolve names.
var bundles sync.Map // bundleKey -> *servingMetrics

// bundleKey identifies one resolved bundle: the registry plus the
// tenant label every metric name carries ("" = unlabeled).
type bundleKey struct {
	reg    *telemetry.Registry
	tenant string
}

func metricsFor(reg *telemetry.Registry) *servingMetrics {
	return labeledMetricsFor(reg, "")
}

// labeledMetricsFor resolves the serving bundle whose every metric name
// carries a {tenant="..."} label (none when tenant is ""). Resolution
// happens once per (registry, tenant); recording afterwards is the same
// zero-allocation atomic path as unlabeled metrics.
func labeledMetricsFor(reg *telemetry.Registry, tenant string) *servingMetrics {
	if reg == nil {
		return nil
	}
	key := bundleKey{reg, tenant}
	if v, ok := bundles.Load(key); ok {
		return v.(*servingMetrics)
	}
	name := func(base string) string {
		if tenant == "" {
			return base
		}
		return telemetry.WithLabel(base, "tenant", tenant)
	}
	m := &servingMetrics{
		reg:           reg,
		tenant:        tenant,
		answers:       reg.Counter(name("xpv_answers_total")),
		answerErrs:    reg.Counter(name("xpv_answer_errors_total")),
		errNotAns:     reg.Counter(name("xpv_errors_not_answerable_total")),
		errBudget:     reg.Counter(name("xpv_errors_budget_total")),
		errInternal:   reg.Counter(name("xpv_errors_internal_total")),
		errCanceled:   reg.Counter(name("xpv_errors_canceled_total")),
		planHits:      reg.Counter(name("xpv_plan_cache_hits_total")),
		planMisses:    reg.Counter(name("xpv_plan_cache_misses_total")),
		planBypass:    reg.Counter(name("xpv_plan_cache_bypass_total")),
		planNegative:  reg.Counter(name("xpv_plan_negative_served_total")),
		rungFallbacks: reg.Counter(name("xpv_resilient_fallbacks_total")),
		slowQueries:   reg.Counter(name("xpv_slow_queries_total")),

		maintains:        reg.Counter(name("xpv_maintain_total")),
		maintainErrs:     reg.Counter(name("xpv_maintain_errors_total")),
		maintainDirty:    reg.Counter(name("xpv_maintain_dirty_views_total")),
		maintainFragsAdd: reg.Counter(name("xpv_maintain_fragments_added_total")),
		maintainFragsDel: reg.Counter(name("xpv_maintain_fragments_removed_total")),

		latTotal:    reg.Histogram(name("xpv_answer_ns")),
		latParse:    reg.Histogram(name("xpv_parse_ns")),
		latFilter:   reg.Histogram(name("xpv_filter_ns")),
		latSelect:   reg.Histogram(name("xpv_select_ns")),
		latRewrite:  reg.Histogram(name("xpv_rewrite_ns")),
		latMaintain: reg.Histogram(name("xpv_maintain_ns")),

		driftGauge:  reg.Gauge(name("xpv_workload_drift")),
		driftEvents: reg.Counter(name("xpv_workload_drift_events_total")),
		calErr:      reg.HistogramCounts(name("xpv_cost_calibration_err_ppm")),

		joinsTotal:      reg.Counter(name("xpv_joins_total")),
		joinPartsTotal:  reg.Counter(name("xpv_join_partitions_total")),
		joinGallopTotal: reg.Counter(name("xpv_join_gallop_hits_total")),
		joinPartsHist:   reg.HistogramCounts(name("xpv_join_partition_fanout")),
		joinGallopHist:  reg.HistogramCounts(name("xpv_join_gallop_hits")),
	}
	for r := range rungNames {
		m.rungServed[r] = reg.Counter(name(fmt.Sprintf("xpv_resilient_rung_served_total{rung=%q}", rungNames[r])))
	}
	v, _ := bundles.LoadOrStore(key, m)
	return v.(*servingMetrics)
}

// init hooks the global fault-injection registry: every actual
// injection counts on the default registry, per point. Injections are
// test/chaos-only events, so the name formatting here is off any hot
// path.
func init() {
	faults.SetObserver(func(name string) {
		telemetry.Default().Counter(fmt.Sprintf("xpv_fault_injected_total{point=%q}", name)).Inc()
	})
}

// SetMetricsRegistry points the system's serving metrics at reg. nil
// disables metrics entirely (the per-call cost drops to nil checks).
// Per-call Options.Metrics still overrides this.
func (s *System) SetMetricsRegistry(reg *MetricsRegistry) {
	s.obsPtr.Store(metricsFor(reg))
}

// SetMetricsTenant points the system's serving metrics at reg with
// every metric name labeled {tenant="name"}, and stamps the tenant on
// slow-query log entries. The labeled fast path is identical to the
// unlabeled one — names resolve once here, recording stays
// allocation-free. An empty name behaves like SetMetricsRegistry.
func (s *System) SetMetricsTenant(reg *MetricsRegistry, name string) {
	s.obsPtr.Store(labeledMetricsFor(reg, name))
	s.slow.SetLabel(name)
}

// MetricsRegistry returns the registry the system currently records
// into, or nil when metrics are disabled.
func (s *System) MetricsRegistry() *MetricsRegistry {
	if m := s.obsPtr.Load(); m != nil {
		return m.reg
	}
	return nil
}

// SetSlowQueryThreshold arms the slow-query log: every serving call
// whose total latency reaches d is recorded in a fixed-size ring
// (newest DefaultSlowLogCapacity entries). d <= 0 disables the log.
func (s *System) SetSlowQueryThreshold(d time.Duration) { s.slow.SetThreshold(d) }

// SlowQueries returns the retained slow-query log entries, oldest
// first.
func (s *System) SlowQueries() []SlowQuery { return s.slow.Snapshot() }

// DumpMetrics writes the expvar-style text exposition: the metrics
// registry (the system's current one, or the process default when
// metrics are disabled), followed by the system's live gauges — plan
// cache counters, view count, slow-log size and rewrite scratch-pool
// traffic. Embedding HTTP servers can serve this directly.
func (s *System) DumpMetrics(w io.Writer) error {
	reg := s.MetricsRegistry()
	if reg == nil {
		reg = telemetry.Default()
	}
	if err := reg.WriteText(w); err != nil {
		return err
	}
	st := s.plans.Stats()
	gets, news := rewrite.PoolStats()
	_, err := fmt.Fprintf(w,
		"xpv_plancache_hits %d\nxpv_plancache_misses %d\nxpv_plancache_evictions %d\nxpv_plancache_invalidations %d\nxpv_plancache_len %d\nxpv_views %d\nxpv_slowlog_len %d\nxpv_slowlog_total %d\nxpv_rewrite_pool_gets %d\nxpv_rewrite_pool_news %d\n",
		st.Hits, st.Misses, st.Evictions, st.Invalidations, s.PlanCacheLen(),
		s.NumViews(), len(s.slow.Snapshot()), s.slow.Logged(), gets, news)
	return err
}

// callObs is one serving call's observation state, passed by value down
// the pipeline. The zero value (all nil) is fully inert.
type callObs struct {
	m       *servingMetrics // nil = metrics off
	sp      *telemetry.Span // current parent span; nil = tracing off
	ex      *explainSink    // nil unless the call came from Explain
	traceID string          // W3C trace ID for exemplars + slow log ("" = none)
}

// startObs resolves the call's observation state and its start time.
func (s *System) startObs(opts Options) (callObs, time.Time) {
	co := callObs{sp: opts.Trace.Root(), ex: opts.explain, traceID: opts.TraceID}
	if co.traceID == "" {
		co.traceID = opts.Trace.ID()
	}
	if opts.Metrics != nil {
		co.m = metricsFor(opts.Metrics)
	} else {
		co.m = s.obsPtr.Load()
	}
	return co, time.Now()
}

// child opens a stage span under the current parent (nil when tracing
// is off).
func (co callObs) child(name string) *telemetry.Span { return co.sp.Child(name) }

// withSpan rebases the observation state under a new parent span.
func (co callObs) withSpan(sp *telemetry.Span) callObs {
	co.sp = sp
	return co
}

// track enables budget spend accounting when this call is being traced
// or explained (Spent feeds the root span and the explain output).
func (co callObs) track(b *budget.B) {
	if co.sp != nil || co.ex != nil {
		b.EnableTracking()
	}
}

// countPlan records a plan-cache outcome.
func (m *servingMetrics) countPlan(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.planHits.Inc()
	} else {
		m.planMisses.Inc()
	}
}

// countPlan forwards to the call's metrics bundle (nil-safe).
func (co callObs) countPlan(hit bool) { co.m.countPlan(hit) }

// abandon closes the root span for a call that failed before the
// pipeline ran (unparsable query, dead context). No metrics are
// recorded: the pipeline never started.
func (co callObs) abandon(err error) {
	if co.sp != nil {
		co.sp.Err(err)
		co.sp.End()
	}
}

// annotatePlanSpan closes a "plan" stage span with its cache outcome.
func annotatePlanSpan(sp *telemetry.Span, pl *queryPlan, cache string) {
	if sp == nil {
		return
	}
	sp.SetAttr("cache", cache)
	sp.SetAttr("negative", pl.err != nil)
	sp.SetAttr("candidates", pl.info.cand)
	sp.End()
}

// finishCall closes out one serving call: error classification
// counters, latency histograms, root span attributes, budget spend for
// explain, and the slow-query log. src may be empty for pattern-based
// calls; q is the fallback rendering of the query, consulted only when
// a slow-log entry is actually recorded (String is not free).
func (s *System) finishCall(co callObs, b *budget.B, t0 time.Time, src string, q *pattern.Pattern, strat string, res *Result, err error) {
	total := time.Since(t0)
	if res != nil {
		res.TotalNanos = int64(total)
	}
	if co.sp != nil || co.ex != nil {
		steps, homs := b.Spent()
		if co.sp != nil {
			co.sp.SetAttr("strategy", strat)
			if res != nil {
				co.sp.SetAttr("answers", len(res.Answers))
			}
			if b != nil {
				co.sp.SetAttr("budget_steps", steps)
				co.sp.SetAttr("budget_homs", homs)
			}
			co.sp.Err(err)
			co.sp.End()
		}
		if co.ex != nil {
			co.ex.steps, co.ex.homs = steps, homs
		}
	}
	if m := co.m; m != nil {
		m.answers.Inc()
		// A propagated trace ID makes this observation an exemplar
		// candidate: the latency bucket retains the ID so a p99 bucket
		// resolves to a concrete exported trace.
		m.latTotal.ObserveExemplar(int64(total), co.traceID)
		if res != nil {
			if res.ParseNanos > 0 {
				m.latParse.Observe(res.ParseNanos)
			}
			if res.FilterNanos > 0 {
				m.latFilter.Observe(res.FilterNanos)
			}
			if res.SelectNanos > 0 {
				m.latSelect.Observe(res.SelectNanos)
			}
			rw := res.RefineNanos + res.JoinNanos + res.ExtractNanos
			if rw > 0 {
				m.latRewrite.Observe(rw)
			}
		}
		if err != nil {
			m.answerErrs.Inc()
			switch {
			case errors.Is(err, ErrNotAnswerable):
				m.errNotAns.Inc()
			case errors.Is(err, ErrBudgetExceeded):
				m.errBudget.Inc()
			case errors.Is(err, ErrInternal):
				m.errInternal.Inc()
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				m.errCanceled.Inc()
			}
		}
	}
	if th := s.slow.Threshold(); th > 0 && total >= th {
		if co.m != nil {
			co.m.slowQueries.Inc()
		}
		e := SlowQuery{
			Time:     time.Now(),
			Strategy: strat,
			Total:    total,
			TraceID:  co.traceID,
		}
		if src != "" {
			e.Query = src
		} else if q != nil {
			e.Query = q.String()
		}
		if err != nil {
			e.Err = err.Error()
		}
		if res != nil {
			e.Rung = res.Rung
			e.CacheHit = res.PlanCacheHit
			e.Views = res.ViewsUsed
			e.Parse = time.Duration(res.ParseNanos)
			e.Filter = time.Duration(res.FilterNanos)
			e.Select = time.Duration(res.SelectNanos)
			e.Rewrite = time.Duration(res.RefineNanos + res.JoinNanos + res.ExtractNanos)
		}
		s.slow.Record(e)
	}
}
