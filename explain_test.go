package xpathviews_test

// Explain tests on the paper's running example (query E over the
// Table I views): a golden rendering with volatile numbers redacted,
// plus semantic checks that the explained plan is the plan Select
// actually chooses.

import (
	"encoding/json"
	"regexp"
	"sort"
	"testing"

	"xpathviews"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/xpath"
)

var (
	durRe = regexp.MustCompile(`[0-9][0-9.]*(ns|µs|ms|s)`)
	numRe = regexp.MustCompile(`[0-9]+`)
)

// redact replaces durations and counts so the golden comparison checks
// structure and plan content, not wall-clock noise.
func redact(s string) string {
	return numRe.ReplaceAllString(durRe.ReplaceAllString(s, "DUR"), "N")
}

const explainGolden = `query:    //s[f//i][t]/p
strategy: HV
plan:     cache miss
views:    N survived filtering
  vN: //s[t]/p (N fragments)
  vN: //s[p]/f (N fragments)
selected: N views, N homomorphisms
  vN: //s[p]/f — lands on f, covers {i, p}
  vN: //s[t]/p — lands on p, covers {Δ, p, t}
answers:  N
stages:
  parse    DUR
  filter   DUR
  select   DUR
  refine   DUR
  join     DUR
  extract  DUR
  total    DUR
budget:   N steps, N homs
trace:
  answer DUR strategy=HV answers=N budget_steps=N budget_homs=N
  ├─ parse DUR
  ├─ plan DUR cache=miss negative=false candidates=N
  │  ├─ vfilter DUR views=N candidates=N query_paths=N
  │  └─ select DUR algo=selection.heuristic candidates=N covers=N leaves_covered=N homs=N
  ├─ rewrite DUR views=N fragments_scanned=N
  │  ├─ refine DUR workers=N
  │  ├─ join DUR fragments_joined=N workers=N
  │  └─ extract DUR workers=N
  └─ collect DUR answers=N
`

// TestExplainGolden: Explain on the paper's example renders the full
// report — plan cache status, surviving and selected views with their
// leaf covers, every stage with nonzero timing, and the span tree.
func TestExplainGolden(t *testing.T) {
	sys, _ := obsSystem(t)
	ex, err := sys.Explain(paperdata.QueryE, xpathviews.HV)
	if err != nil {
		t.Fatal(err)
	}
	if got := redact(ex.Text()); got != explainGolden {
		t.Fatalf("explain text drifted:\n--- got ---\n%s\n--- want ---\n%s", got, explainGolden)
	}
	// Every stage really ran and was timed.
	if len(ex.Stages) != 6 {
		t.Fatalf("got %d stages, want 6", len(ex.Stages))
	}
	for _, st := range ex.Stages {
		if st.Nanos <= 0 {
			t.Fatalf("stage %q has no timing", st.Name)
		}
	}
	if ex.TotalNanos <= 0 {
		t.Fatal("no total timing")
	}
	if ex.BudgetSteps <= 0 || ex.BudgetHoms <= 0 {
		t.Fatalf("budget spend not tracked: steps=%d homs=%d", ex.BudgetSteps, ex.BudgetHoms)
	}
}

// TestExplainMatchesSelect: the selected view set Explain reports is
// exactly the set Select chooses for the same query and strategy.
func TestExplainMatchesSelect(t *testing.T) {
	sys, _ := obsSystem(t)
	ex, err := sys.Explain(paperdata.QueryE, xpathviews.HV)
	if err != nil {
		t.Fatal(err)
	}
	q, err := xpath.Parse(paperdata.QueryE)
	if err != nil {
		t.Fatal(err)
	}
	sel, cand, err := sys.Select(q, xpathviews.HV)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Candidates != cand {
		t.Fatalf("explain candidates = %d, Select reports %d", ex.Candidates, cand)
	}
	var want, got []int
	for _, c := range sel.Covers {
		want = append(want, c.View.ID)
	}
	for _, c := range ex.Selected {
		got = append(got, c.ID)
	}
	sort.Ints(want)
	sort.Ints(got)
	if len(got) != len(want) {
		t.Fatalf("explain selected %v, Select chose %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("explain selected %v, Select chose %v", got, want)
		}
	}
}

// TestExplainHit: explaining a warm query shows the cache hit and still
// reports the filter/select cost the cached plan originally paid.
func TestExplainHit(t *testing.T) {
	sys, _ := obsSystem(t)
	if _, err := sys.Explain(paperdata.QueryE, xpathviews.HV); err != nil {
		t.Fatal(err)
	}
	ex, err := sys.Explain(paperdata.QueryE, xpathviews.HV)
	if err != nil {
		t.Fatal(err)
	}
	if ex.PlanCache != "hit" {
		t.Fatalf("plan cache = %q, want hit", ex.PlanCache)
	}
	for _, st := range ex.Stages {
		switch st.Name {
		case "filter", "select":
			if st.Nanos <= 0 {
				t.Fatalf("hit explain lost the cached plan's %s cost", st.Name)
			}
		case "parse":
			if st.Nanos != 0 {
				t.Fatalf("hit explain reparsed the query (%d ns)", st.Nanos)
			}
		}
	}
	if len(ex.Selected) == 0 {
		t.Fatal("hit explain lost the selected view set")
	}
}

// TestExplainNotAnswerable: an unanswerable query still explains, with
// the error and the empty selection visible.
func TestExplainNotAnswerable(t *testing.T) {
	sys, _ := obsSystem(t)
	ex, err := sys.Explain("//nosuchlabel[x]", xpathviews.HV)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Error == "" {
		t.Fatal("explanation missing the error")
	}
	if len(ex.Selected) != 0 {
		t.Fatalf("unanswerable query selected views: %+v", ex.Selected)
	}
}

// TestExplainJSON: the JSON exposition round-trips with the key fields.
func TestExplainJSON(t *testing.T) {
	sys, _ := obsSystem(t)
	ex, err := sys.Explain(paperdata.QueryE, xpathviews.HV)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ex.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"query", "strategy", "plan_cache", "surviving_views",
		"selected_views", "stages", "budget_steps_spent", "total_ns"} {
		if _, ok := back[key]; !ok {
			t.Fatalf("explain JSON missing %q:\n%s", key, raw)
		}
	}
}
