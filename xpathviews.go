// Package xpathviews answers XPath queries using multiple materialized
// views, implementing Tang, Yu, Özsu, Choi and Wong, "Multiple
// Materialized View Selection for XPath Query Rewriting" (ICDE 2008).
//
// The library covers the paper's full pipeline:
//
//   - materialized views over an XML document, with extended-Dewey-coded
//     fragments (§II);
//   - VFILTER, an NFA over decomposed + normalized view path patterns
//     that prunes views which cannot answer a query (§III);
//   - leaf-cover based multiple view/query answerability, exact minimum
//     selection and the greedy heuristic of Algorithm 2 (§IV);
//   - equivalent rewriting: per-view compensating refinement, a holistic
//     join of fragment roots on Dewey codes (no base-data access), and
//     answer extraction (§V);
//   - the evaluation baselines BN and BF of §VI.
//
// Basic use:
//
//	sys, _ := xpathviews.OpenXMLString(doc)
//	sys.AddView("//open_auction[bidder]/seller", xpathviews.DefaultFragmentLimit)
//	res, _ := sys.Answer("//open_auction[bidder[increase]]/seller", xpathviews.HV)
//	for _, a := range res.Answers { fmt.Println(a.Code) }
package xpathviews

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xpathviews/internal/advisor"
	"xpathviews/internal/budget"
	"xpathviews/internal/dewey"
	"xpathviews/internal/engine"
	"xpathviews/internal/pattern"
	"xpathviews/internal/plancache"
	"xpathviews/internal/rewrite"
	"xpathviews/internal/selection"
	"xpathviews/internal/storage"
	"xpathviews/internal/telemetry"
	"xpathviews/internal/vfilter"
	"xpathviews/internal/views"
	"xpathviews/internal/viewstats"
	"xpathviews/internal/xmltree"
	"xpathviews/internal/xpath"
)

// DefaultFragmentLimit re-exports the paper's 128 KB per-view cap.
const DefaultFragmentLimit = views.DefaultFragmentLimit

// Strategy selects how a query is answered; the names follow §VI.
type Strategy int

const (
	// BN evaluates directly on the document, navigationally ("basic
	// node index").
	BN Strategy = iota
	// BF evaluates directly with full index support.
	BF
	// MN selects the minimum view set without VFILTER (homomorphisms
	// against every view) and rewrites.
	MN
	// MV selects the minimum view set among VFILTER's candidates and
	// rewrites.
	MV
	// HV runs the heuristic selection (Algorithm 2) on VFILTER's
	// candidates and rewrites.
	HV
	// CV runs the cost-based selection (§IV-B's omitted cost model,
	// implemented here) on VFILTER's candidates and rewrites.
	CV
)

var strategyNames = [...]string{"BN", "BF", "MN", "MV", "HV", "CV"}

func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ErrNotAnswerable re-exports the selection failure.
var ErrNotAnswerable = selection.ErrNotAnswerable

// System owns a document, its encoding, its materialized views and the
// view filter.
//
// Concurrency: a System is safe for concurrent use. Answer*, Select*,
// Filtering and AnswerContained run under a read lock; AddView*,
// RemoveView, CompactFilter and EnableAttributePruning take the write
// lock, so view mutation serializes against in-flight queries. The
// accessors Registry and Filter return live internals — callers must not
// mutate them while queries run.
type System struct {
	mu       sync.RWMutex
	doc      *xmltree.Tree
	enc      *dewey.Encoding
	fst      *dewey.FST
	registry *views.Registry
	filter   *vfilter.Filter

	bn *engine.BN
	// bf is built lazily on the first BF query; bfOnce makes the
	// initialization race-free under the read lock. It is a pointer so
	// mutations (under the write lock) can swap in a fresh Once when they
	// invalidate the index (see resetEvalLocked in mutate.go).
	bfOnce *sync.Once
	bf     *engine.BF

	// rec is the optional workload recorder (see advise.go). An atomic
	// pointer keeps the recorder-absent answering path at one atomic
	// load — no lock, no allocation.
	rec atomic.Pointer[advisor.Recorder]

	// plans memoizes query plans (see plan.go); planGen is the view-set
	// generation — bumped under the write lock by every mutation, read
	// under the read lock by queries, so a cached selection can never
	// outlive the views it references.
	plans   *plancache.Cache
	planGen atomic.Uint64

	// obsPtr holds the system's pre-resolved serving metrics (see
	// observe.go); nil disables metrics. An atomic pointer keeps the
	// per-call resolution at one load.
	obsPtr atomic.Pointer[servingMetrics]
	// slow is the slow-query ring; disarmed (threshold 0) by default.
	slow *telemetry.SlowLog

	// wal, when attached, receives one record per applied mutation;
	// walSeq is the last sequence number written. Guarded by mu (see
	// mutate.go).
	wal    *storage.Store
	walSeq uint64
	// scopedInval selects per-view-generation plan invalidation (the
	// default) over a global generation bump per mutation. Guarded by mu.
	scopedInval bool

	// vstats is the always-on view observatory (per-view utility
	// attribution, cost-model calibration, workload-drift detection; see
	// viewstats_report.go). An atomic pointer keeps the hot path at one
	// load; nil disables accounting (used by the overhead guard to
	// measure the attribution path's cost).
	vstats atomic.Pointer[viewstats.Store]
}

// Open prepares a system over an in-memory document, deriving the FST
// from the document itself (alphabetical child alphabets).
func Open(doc *xmltree.Tree) (*System, error) {
	fst := dewey.BuildFST(doc)
	return OpenWithFST(doc, fst)
}

// OpenWithFST prepares a system using a caller-supplied FST, e.g. one
// built from a schema with a specific child-alphabet order (the paper's
// Figure 3 codes depend on the order).
func OpenWithFST(doc *xmltree.Tree, fst *dewey.FST) (*System, error) {
	enc, err := dewey.Encode(doc, fst)
	if err != nil {
		return nil, fmt.Errorf("xpathviews: %w", err)
	}
	sys := &System{
		doc:         doc,
		enc:         enc,
		fst:         fst,
		registry:    views.NewRegistry(doc, enc),
		filter:      vfilter.New(),
		bn:          engine.NewBN(doc),
		bfOnce:      &sync.Once{},
		plans:       plancache.New(0, 0),
		slow:        telemetry.NewSlowLog(0),
		scopedInval: true,
	}
	sys.obsPtr.Store(metricsFor(telemetry.Default()))
	sys.vstats.Store(viewstats.New())
	return sys, nil
}

// OpenXML parses an XML document and prepares a system over it.
func OpenXML(r io.Reader) (*System, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return Open(doc)
}

// OpenXMLString is OpenXML over a string.
func OpenXMLString(s string) (*System, error) { return OpenXML(strings.NewReader(s)) }

// Document returns the underlying tree.
func (s *System) Document() *xmltree.Tree { return s.doc }

// Encoding returns the document's extended Dewey encoding.
func (s *System) Encoding() *dewey.Encoding { return s.enc }

// FST returns the decoding transducer.
func (s *System) FST() *dewey.FST { return s.fst }

// Filter exposes the underlying VFILTER (read-mostly).
func (s *System) Filter() *vfilter.Filter { return s.filter }

// Registry exposes the materialized view registry.
func (s *System) Registry() *views.Registry { return s.registry }

// AddView parses, minimizes, materializes and indexes a view. limit caps
// the materialized bytes (0 = unlimited; DefaultFragmentLimit = paper's
// 128 KB). It returns the view's ID.
func (s *System) AddView(src string, limit int) (int, error) {
	p, err := xpath.Parse(src)
	if err != nil {
		return 0, err
	}
	return s.AddViewPattern(p, limit)
}

// AddViewPattern is AddView for already-parsed patterns.
func (s *System) AddViewPattern(p *pattern.Pattern, limit int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.registry.Add(p, limit)
	if err != nil {
		return 0, err
	}
	s.filter.AddView(v.ID, v.Pattern)
	s.bumpPlanGen()
	return v.ID, nil
}

// NumViews returns the number of live materialized views.
func (s *System) NumViews() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.registry.Len()
}

// RemoveView drops a materialized view from both the registry and the
// filter, freeing its fragment storage for other views (IDs are not
// reused). Returns false for unknown IDs.
func (s *System) RemoveView(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.registry.Remove(id)
	b := s.filter.RemoveView(id)
	s.bumpPlanGen()
	return a && b
}

// CompactFilter rebuilds the VFILTER from the live views, reclaiming
// trie states left behind by RemoveView. Attribute pruning state is
// preserved.
func (s *System) CompactFilter() {
	s.mu.Lock()
	defer s.mu.Unlock()
	nf := vfilter.New()
	if s.filter.AttrPruningEnabled() {
		nf.EnableAttributePruning()
	}
	for _, v := range s.registry.Views() {
		nf.AddView(v.ID, v.Pattern)
	}
	s.filter = nf
	s.bumpPlanGen()
}

// Answer is one query result.
type Answer struct {
	// Code is the answer node's extended Dewey code.
	Code dewey.Code
	// Node is the answer node: a document node for BN/BF, a fragment
	// node for the view strategies.
	Node *xmltree.Node
}

// Result reports a query's answers plus strategy metadata.
type Result struct {
	Strategy Strategy
	Answers  []Answer
	// ViewsUsed lists the IDs of the selected views (view strategies).
	ViewsUsed []int
	// CandidatesAfterFilter is |V'| (MV/HV only).
	CandidatesAfterFilter int
	// HomsComputed counts homomorphism computations during selection.
	HomsComputed int

	// Rung names the fallback rung that produced the answers (set by
	// AnswerResilient only, e.g. "HV" or "contained").
	Rung string
	// Degraded reports that at least one earlier rung failed before this
	// result was produced (AnswerResilient only).
	Degraded bool
	// DegradedReasons records, per failed rung, "rung: cause" in the
	// order the rungs were tried (AnswerResilient only).
	DegradedReasons []string
	// Partial reports that the answers come from a contained rewriting
	// that could not certify completeness: every answer is a true answer,
	// but some answers may be missing.
	Partial bool
	// Truncated reports that MaxAnswers cut the answer list short.
	Truncated bool

	// PlanCacheHit reports the call was served from a memoized query
	// plan: filtering and selection were skipped entirely (view
	// strategies only).
	PlanCacheHit bool
	// Stage wall times, in nanoseconds, populated on every call without
	// tracing. ParseNanos covers parsing + minimization and is zero when
	// the caller supplied a pattern or the raw source hit the plan-cache
	// alias; FilterNanos and SelectNanos cover §III filtering and §IV
	// selection and are zero on a plan-cache hit (the cached plan skips
	// both — Explain still shows what the plan originally cost);
	// RefineNanos/JoinNanos/ExtractNanos cover §V's rewriting stages and
	// are populated on hits and misses alike. TotalNanos is the whole
	// call.
	ParseNanos   int64
	FilterNanos  int64
	SelectNanos  int64
	RefineNanos  int64
	JoinNanos    int64
	ExtractNanos int64
	TotalNanos   int64

	// JoinPartitions is the holistic join's partition fan-out: how many
	// Δ-prefix partitions the parallel kernel split the work into (1 for
	// the sequential path, 0 when the strong single-cover fast path
	// skipped the join entirely).
	JoinPartitions int
	// GallopHits counts merge emissions the join's galloping inner loop
	// produced beyond its first per-advance emission — a measure of how
	// run-structured the fragment lists were.
	GallopHits int64
}

// Codes returns the sorted answer codes as strings.
func (r *Result) Codes() []string {
	out := make([]string, len(r.Answers))
	for i, a := range r.Answers {
		out[i] = a.Code.String()
	}
	sort.Strings(out)
	return out
}

// Answer evaluates the query under the chosen strategy. It is
// AnswerContext with a background context and no budgets.
func (s *System) Answer(src string, strat Strategy) (*Result, error) {
	return s.AnswerContext(context.Background(), src, Options{Strategy: strat})
}

// AnswerPattern is Answer for already-parsed queries.
func (s *System) AnswerPattern(q *pattern.Pattern, strat Strategy) (*Result, error) {
	return s.AnswerPatternContext(context.Background(), q, Options{Strategy: strat})
}

// Select runs view selection only (the "lookup" of Figure 9), returning
// the selection and the number of candidate views after filtering (the
// registry size for MN).
func (s *System) Select(q *pattern.Pattern, strat Strategy) (*selection.Selection, int, error) {
	return s.SelectContext(context.Background(), q, strat, Options{Strategy: strat})
}

// selectLocked runs selection under s.mu (read) with a budget,
// returning the selection plus the planInfo accounting (candidate set,
// stage timings). Stage failures (injected faults, panics) are
// converted to *InternalError. When tracing is on, it emits the
// "vfilter" and "select" stage spans.
func (s *System) selectLocked(q *pattern.Pattern, strat Strategy, b *budget.B, co callObs) (*selection.Selection, planInfo, error) {
	var info planInfo
	filtering := func() (*vfilter.Result, error) {
		sp := co.child("vfilter")
		t := time.Now()
		fres, err := runStage("vfilter.filtering", func() (*vfilter.Result, error) {
			return s.filter.FilteringBudget(q, b)
		})
		info.filterNanos = int64(time.Since(t))
		if sp != nil {
			sp.SetAttr("views", s.registry.Len())
			if fres != nil {
				sp.SetAttr("candidates", len(fres.Candidates))
				sp.SetAttr("query_paths", len(fres.QueryPaths))
			}
			sp.Err(err)
			sp.End()
		}
		if fres != nil {
			info.cand = len(fres.Candidates)
			info.candIDs = fres.Candidates
		}
		return fres, err
	}
	sel := func(algo string, f func() (*selection.Selection, error)) (*selection.Selection, planInfo, error) {
		// Seam check: filter → select. Selection can be exponential; never
		// start it for a caller that vanished during filtering.
		if err := b.CtxErr(); err != nil {
			return nil, info, err
		}
		sp := co.child("select")
		t := time.Now()
		out, err := runStage(algo, f)
		info.selectNanos = int64(time.Since(t))
		if sp != nil {
			sp.SetAttr("algo", algo)
			sp.SetAttr("candidates", info.cand)
			if out != nil {
				leaves := 0
				for _, c := range out.Covers {
					leaves += len(c.Leaves)
				}
				sp.SetAttr("covers", len(out.Covers))
				sp.SetAttr("leaves_covered", leaves)
				sp.SetAttr("homs", out.HomsComputed)
			}
			sp.Err(err)
			sp.End()
		}
		return out, info, err
	}
	switch strat {
	case MN:
		info.cand = s.registry.Len()
		info.allViews = true
		return sel("selection.minimum", func() (*selection.Selection, error) {
			return selection.MinimumBudget(q, s.registry.Views(), b)
		})
	case MV:
		fres, err := filtering()
		if err != nil {
			return nil, info, err
		}
		cands := make([]*views.View, 0, len(fres.Candidates))
		for _, id := range fres.Candidates {
			cands = append(cands, s.registry.Get(id))
		}
		return sel("selection.minimum", func() (*selection.Selection, error) {
			return selection.MinimumBudget(q, cands, b)
		})
	case HV:
		fres, err := filtering()
		if err != nil {
			return nil, info, err
		}
		return sel("selection.heuristic", func() (*selection.Selection, error) {
			return selection.HeuristicBudget(q, fres, s.registry, b)
		})
	case CV:
		fres, err := filtering()
		if err != nil {
			return nil, info, err
		}
		return sel("selection.costbased", func() (*selection.Selection, error) {
			return selection.CostBasedBudget(q, fres, s.registry, selection.DefaultCostParams(), b)
		})
	default:
		return nil, info, fmt.Errorf("xpathviews: %v is not a view strategy", strat)
	}
}

// Filtering exposes raw VFILTER output for a query.
func (s *System) Filtering(q *pattern.Pattern) *vfilter.Result {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.filter.Filtering(q)
}

// EnableAttributePruning activates the attribute-aware VFILTER extension
// (§VII future work): view path patterns record the attribute names they
// demand, and filtering rejects views whose demands the query cannot
// satisfy. Must be called before the first AddView.
func (s *System) EnableAttributePruning() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.filter.EnableAttributePruning()
	s.bumpPlanGen()
}

// AnswerContained computes a contained (sound but possibly incomplete)
// rewriting of the query — §VII's data-integration extension. Every
// returned answer is a true answer; Complete reports when the set is
// known to be exact. Unlike the equivalent strategies it never fails
// with ErrNotAnswerable: an empty result simply means no view certifies
// any answer.
func (s *System) AnswerContained(src string) (*Result, bool, error) {
	q, err := xpath.Parse(src)
	if err != nil {
		return nil, false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	res, err := s.containedLocked(pattern.Minimize(q), nil, callObs{})
	if err != nil {
		return nil, false, err
	}
	return res, !res.Partial, nil
}

// containedLocked runs the contained rewriting under s.mu (read).
func (s *System) containedLocked(q *pattern.Pattern, b *budget.B, co callObs) (*Result, error) {
	sp := co.child("contained")
	out, err := runStage("rewrite.contained", func() (*rewrite.ContainedResult, error) {
		return rewrite.ContainedBudget(q, s.registry.ViewList, s.fst, b)
	})
	if err != nil {
		sp.Err(err)
		sp.End()
		return nil, err
	}
	res := &Result{Strategy: HV, ViewsUsed: out.ViewsUsed, Partial: !out.Complete}
	for _, a := range out.Answers {
		res.Answers = append(res.Answers, Answer{Code: a.Code, Node: a.Node})
	}
	if sp != nil {
		sp.SetAttr("views_used", len(out.ViewsUsed))
		sp.SetAttr("complete", out.Complete)
		sp.SetAttr("answers", len(res.Answers))
		sp.End()
	}
	return res, nil
}

// lazyBF returns the BF evaluator, building it race-free on first use.
func (s *System) lazyBF() *engine.BF {
	s.bfOnce.Do(func() { s.bf = engine.NewBF(s.doc) })
	return s.bf
}

// collectDoc converts document nodes to answers, failing loudly when a
// node has no extended Dewey code (an encoding inconsistency) instead of
// emitting a zero code.
func (s *System) collectDoc(res *Result, nodes []*xmltree.Node) error {
	for _, n := range nodes {
		code, ok := s.enc.CodeOf(n)
		if !ok {
			return fmt.Errorf("xpathviews: answer node %q has no extended Dewey code", n.Label)
		}
		res.Answers = append(res.Answers, Answer{Code: code, Node: n})
	}
	return nil
}

// MarshalAnswer serializes one answer's subtree as XML.
func MarshalAnswer(a Answer) (string, error) {
	if a.Node == nil {
		return "", fmt.Errorf("xpathviews: answer has no node")
	}
	return xmltree.MarshalString(a.Node)
}
